(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation (Section 6) on the synthetic datasets.

   Usage:
     main.exe [--quick] [--json PATH] [--pattern-json PATH] [target ...]
   Targets: table4 table5 table6 table7 table8 figure11 table9 table10
   table11 flows patterns micro solvers all (default: all).
   --json sets the output path of the solver benchmark's
   machine-readable results (default: BENCH_flow.json);
   --pattern-json does the same for the pattern-search jobs sweep
   (default: BENCH_pattern.json, written by the patterns target);
   --load-json for the CSV-vs-snapshot load benchmark (default:
   BENCH_load.json, written by the load target); --ingest-json for the
   streaming-daemon throughput benchmark (default: BENCH_ingest.json,
   written by the ingest target); --provenance-json for the
   provenance-scan benchmark (default: BENCH_provenance.json, written
   by the provenance target). *)

let known_targets =
  [
    "table4"; "table5"; "table6"; "table7"; "table8"; "figure11"; "table9"; "table10"; "table11";
    "flows"; "patterns"; "micro"; "ablation"; "sweep"; "solvers"; "obs"; "load"; "ingest";
    "provenance"; "all";
  ]

let usage () =
  Printf.printf "usage: main.exe [--quick] [--json PATH] [%s]*\n"
    (String.concat "|" known_targets);
  exit 2

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "--quick" args in
  let json = ref "BENCH_flow.json" in
  let pattern_json = ref "BENCH_pattern.json" in
  let load_json = ref "BENCH_load.json" in
  let ingest_json = ref "BENCH_ingest.json" in
  let provenance_json = ref "BENCH_provenance.json" in
  let rec strip = function
    | "--json" :: path :: rest ->
        json := path;
        strip rest
    | "--pattern-json" :: path :: rest ->
        pattern_json := path;
        strip rest
    | "--load-json" :: path :: rest ->
        load_json := path;
        strip rest
    | "--ingest-json" :: path :: rest ->
        ingest_json := path;
        strip rest
    | "--provenance-json" :: path :: rest ->
        provenance_json := path;
        strip rest
    | [ "--json" ] | [ "--pattern-json" ] | [ "--load-json" ] | [ "--ingest-json" ]
    | [ "--provenance-json" ] ->
        usage ()
    | a :: rest -> a :: strip rest
    | [] -> []
  in
  let args = strip args in
  let targets = List.filter (fun a -> a <> "--quick") args in
  let targets = if targets = [] then [ "all" ] else targets in
  List.iter
    (fun t ->
      if not (List.mem t known_targets) then begin
        Printf.printf "unknown target: %s\n" t;
        usage ()
      end)
    targets;
  let wants t =
    List.mem t targets || List.mem "all" targets
    || (List.mem "flows" targets
       && List.mem t [ "table4"; "table5"; "table6"; "table7"; "table8"; "figure11" ])
    || (List.mem "patterns" targets && List.mem t [ "table9"; "table10"; "table11" ])
  in
  let scale = if quick then Workload.quick else Workload.full in
  Printf.printf
    "Flow Computation in Temporal Interaction Networks -- experiment harness (%s scale)\n\n"
    (if quick then "quick" else "full");
  Printf.printf "Generating datasets and extracting subgraphs...\n%!";
  let datasets, gen_secs = Tin_util.Timer.time_f (fun () -> Workload.load scale) in
  Printf.printf "  done in %.1fs\n\n%!" gen_secs;
  if wants "table4" then begin
    Flow_bench.table4 datasets;
    print_newline ()
  end;
  if wants "table5" then begin
    Flow_bench.table5 datasets;
    print_newline ()
  end;
  let flow_tables = [ ("table6", 6); ("table7", 7); ("table8", 8) ] in
  let need_measure =
    wants "figure11" || List.exists (fun (t, _) -> wants t) flow_tables
  in
  if need_measure then begin
    Printf.printf "Measuring flow-computation methods on every subgraph...\n%!";
    let measured =
      List.filter_map
        (fun (t, table_id) ->
          if wants t || wants "figure11" then begin
            let d = List.find (fun d -> d.Workload.table_id = table_id) datasets in
            Some (t, d, Flow_bench.measure_dataset d)
          end
          else None)
        flow_tables
    in
    print_newline ();
    List.iter (fun (t, d, m) -> if wants t then Flow_bench.flow_table d m) measured;
    if wants "figure11" then
      List.iter
        (fun (_, d, m) ->
          Flow_bench.figure11 d m;
          print_newline ())
        measured
  end;
  List.iter
    (fun (t, table_id) ->
      if wants t then
        Pattern_bench.run_dataset scale
          (List.find (fun d -> d.Workload.pattern_table_id = table_id) datasets))
    [ ("table9", 9); ("table10", 10); ("table11", 11) ];
  if wants "patterns" then begin
    Pattern_bench.run_sweep ~json:!pattern_json
      ~scale_name:(if quick then "quick" else "full")
      scale datasets;
    print_newline ()
  end;
  if wants "ablation" then Ablation.run datasets;
  if wants "sweep" then Sweep.run ();
  if wants "solvers" then begin
    Solver_bench.run ~json:!json ~scale_name:(if quick then "quick" else "full") datasets;
    print_newline ()
  end;
  if wants "obs" then begin
    Obs_bench.run datasets;
    print_newline ()
  end;
  if wants "load" then begin
    Load_bench.run ~json:!load_json ~scale_name:(if quick then "quick" else "full") datasets;
    print_newline ()
  end;
  if wants "ingest" then begin
    Ingest_bench.run ~json:!ingest_json ~scale_name:(if quick then "quick" else "full") ~quick ();
    print_newline ()
  end;
  if wants "provenance" then begin
    Provenance_bench.run ~json:!provenance_json
      ~scale_name:(if quick then "quick" else "full")
      ~quick ();
    print_newline ()
  end;
  if wants "micro" || List.mem "all" targets then Micro.run datasets;
  print_endline "Done."
