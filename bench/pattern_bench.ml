(* Pattern-search experiments: Tables 9-11 (GB vs PB).

   PB runs to completion (with the paper's 3000-instance cap on the
   LP-per-instance patterns P4/P6); GB gets a wall-clock budget, and
   when it cannot finish, the total time is extrapolated from its
   instance rate — the paper does the same ("15 days (est.)" for P5 on
   Bitcoin, early termination for the starred P4/P6 rows). *)

module Catalog = Tin_patterns.Catalog
module Tables = Tin_patterns.Tables
module Table = Tin_util.Table
module Timer = Tin_util.Timer

(* Patterns per dataset, as in the paper: P1/RP1 only where the chain
   table was precomputed (Prosper). *)
let patterns_for d =
  let with_chains = d.Workload.pattern_table_id = 11 in
  List.filter (fun p -> with_chains || not (Catalog.needs_chains p)) Catalog.all

let gb_budget_ms = 20_000.0

let run_dataset scale d =
  let spec_name = d.Workload.spec.Tin_datasets.Spec.name in
  let with_chains = d.Workload.pattern_table_id = 11 in
  let tables, pre_ms =
    Timer.time_ms (fun () -> Catalog.precompute ~with_chains d.Workload.net)
  in
  let rows =
    List.map
      (fun pattern ->
        let limit =
          match pattern with
          | Catalog.Rigid (Catalog.P4 | Catalog.P6) -> scale.Workload.lp_pattern_limit
          | _ -> scale.Workload.gb_limit
        in
        let pb, pb_ms =
          Timer.time_ms (fun () -> Catalog.pb ~limit d.Workload.net tables pattern)
        in
        let gb, gb_ms =
          Timer.time_ms (fun () ->
              Catalog.gb ~limit ~time_budget_ms:gb_budget_ms d.Workload.net pattern)
        in
        (* When neither search was cut short they must agree exactly. *)
        if
          (not gb.Catalog.truncated) && (not pb.Catalog.truncated)
          && gb.Catalog.instances <> pb.Catalog.instances
        then
          failwith
            (Printf.sprintf "GB/PB instance disagreement on %s/%s: %d vs %d" spec_name
               (Catalog.pattern_name pattern) gb.Catalog.instances pb.Catalog.instances);
        let gb_time =
          if gb.Catalog.timed_out && gb.Catalog.instances > 0 then
            (* Extrapolate from the instance rate, like the paper's
               "(est.)" entries. *)
            Table.fmt_ms
              (gb_ms *. float_of_int pb.Catalog.instances /. float_of_int gb.Catalog.instances)
            ^ " (est.)"
          else if gb.Catalog.timed_out then ">" ^ Table.fmt_ms gb_ms
          else Table.fmt_ms gb_ms
        in
        let star = if pb.Catalog.truncated then "*" else "" in
        [
          Catalog.pattern_name pattern ^ star;
          Table.fmt_count (float_of_int pb.Catalog.instances);
          Table.fmt_flow (Catalog.avg_flow pb);
          gb_time;
          Table.fmt_ms pb_ms;
        ])
      (patterns_for d)
  in
  Table.print
    ~title:
      (Printf.sprintf "Table %d: Pattern search on %s%s" d.Workload.pattern_table_id spec_name
         (if with_chains then " (incl. 2-hop chain table)" else ""))
    ~header:[ "Pattern"; "Instances"; "Average flow"; "GB"; "PB" ]
    rows;
  Printf.printf
    "  -> precomputation: %s (L2: %d rows, L3: %d rows%s); * = capped (P4/P6 at %d, like the paper's 3000)\n\n%!"
    (Table.fmt_ms pre_ms) (Tables.n_rows tables.Catalog.l2) (Tables.n_rows tables.Catalog.l3)
    (match tables.Catalog.c2 with
    | Some c2 -> Printf.sprintf ", chains: %d rows" (Tables.n_rows c2)
    | None -> "")
    scale.Workload.lp_pattern_limit

let run scale datasets = List.iter (run_dataset scale) datasets
