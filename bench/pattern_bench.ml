(* Pattern-search experiments: Tables 9-11 (GB vs PB).

   PB runs to completion (with the paper's 3000-instance cap on the
   LP-per-instance patterns P4/P6); GB gets a wall-clock budget, and
   when it cannot finish, the total time is extrapolated from its
   instance rate — the paper does the same ("15 days (est.)" for P5 on
   Bitcoin, early termination for the starred P4/P6 rows). *)

module Batch = Tin_core.Batch
module Catalog = Tin_patterns.Catalog
module Tables = Tin_patterns.Tables
module Table = Tin_util.Table
module Timer = Tin_util.Timer

(* Patterns per dataset, as in the paper: P1/RP1 only where the chain
   table was precomputed (Prosper). *)
let patterns_for d =
  let with_chains = d.Workload.pattern_table_id = 11 in
  List.filter (fun p -> with_chains || not (Catalog.needs_chains p)) Catalog.all

let pattern_limit scale pattern =
  match pattern with
  | Catalog.Rigid (Catalog.P4 | Catalog.P6) -> scale.Workload.lp_pattern_limit
  | _ -> scale.Workload.gb_limit

let run_dataset scale d =
  let spec_name = d.Workload.spec.Tin_datasets.Spec.name in
  let with_chains = d.Workload.pattern_table_id = 11 in
  let gb_budget_ms = scale.Workload.gb_budget_ms in
  let tables, pre_ms =
    Timer.time_ms (fun () -> Catalog.precompute ~with_chains d.Workload.net)
  in
  let rows =
    List.map
      (fun pattern ->
        let limit = pattern_limit scale pattern in
        let pb, pb_ms =
          Timer.time_ms (fun () -> Catalog.pb ~limit d.Workload.net tables pattern)
        in
        let gb, gb_ms =
          Timer.time_ms (fun () ->
              Catalog.gb ~limit ~time_budget_ms:gb_budget_ms d.Workload.net pattern)
        in
        (* When neither search was cut short they must agree exactly. *)
        if
          (not gb.Catalog.truncated) && (not pb.Catalog.truncated)
          && gb.Catalog.instances <> pb.Catalog.instances
        then
          failwith
            (Printf.sprintf "GB/PB instance disagreement on %s/%s: %d vs %d" spec_name
               (Catalog.pattern_name pattern) gb.Catalog.instances pb.Catalog.instances);
        let gb_time =
          if gb.Catalog.timed_out && gb.Catalog.instances > 0 then
            (* Extrapolate from the instance rate, like the paper's
               "(est.)" entries. *)
            Table.fmt_ms
              (gb_ms *. float_of_int pb.Catalog.instances /. float_of_int gb.Catalog.instances)
            ^ " (est.)"
          else if gb.Catalog.timed_out then ">" ^ Table.fmt_ms gb_ms
          else Table.fmt_ms gb_ms
        in
        let star = if pb.Catalog.truncated then "*" else "" in
        [
          Catalog.pattern_name pattern ^ star;
          Table.fmt_count (float_of_int pb.Catalog.instances);
          Table.fmt_flow (Catalog.avg_flow pb);
          gb_time;
          Table.fmt_ms pb_ms;
        ])
      (patterns_for d)
  in
  Table.print
    ~title:
      (Printf.sprintf "Table %d: Pattern search on %s%s" d.Workload.pattern_table_id spec_name
         (if with_chains then " (incl. 2-hop chain table)" else ""))
    ~header:[ "Pattern"; "Instances"; "Average flow"; "GB"; "PB" ]
    rows;
  Printf.printf
    "  -> precomputation: %s (L2: %d rows, L3: %d rows%s); * = capped (P4/P6 at %d, like the paper's 3000)\n\n%!"
    (Table.fmt_ms pre_ms) (Tables.n_rows tables.Catalog.l2) (Tables.n_rows tables.Catalog.l3)
    (match tables.Catalog.c2 with
    | Some c2 -> Printf.sprintf ", chains: %d rows" (Tables.n_rows c2)
    | None -> "")
    scale.Workload.lp_pattern_limit

let run scale datasets = List.iter (run_dataset scale) datasets

(* ------------------------------------------------------------------ *)
(* Parallel jobs sweep (BENCH_pattern.json)                            *)
(* ------------------------------------------------------------------ *)

(* Same job ladder as the solver benchmark: always include jobs = 2 so
   the multi-domain path runs even on one core, then only counts the
   hardware supports. *)
let job_counts () =
  let rec_jobs = Batch.recommended_jobs () in
  List.sort_uniq compare (1 :: 2 :: rec_jobs :: List.filter (fun j -> j <= rec_jobs) [ 4; 8 ])

type run_point = {
  jobs : int;
  gb_ms : float;
  gb_instances : int;
  gb_truncated : bool;
  pb_ms : float;
  pb_instances : int;
}

type pattern_sweep = { pattern : string; points : run_point list }

type dataset_sweep = {
  ds_name : string;
  precompute_ms : (int * float) list; (* jobs -> wall ms *)
  l2_rows : int;
  l3_rows : int;
  chain_rows : int option;
  sweeps : pattern_sweep list;
  obs : (string * int) list;
}

(* A separate instrumented pass (timed runs stay uninstrumented): one
   GB and one PB search per pattern with counters on, so
   BENCH_pattern.json records tickets consumed, anchors sharded,
   deadline hits and the per-instance LP work for regression
   tracking. *)
let obs_snapshot scale d tables budget_ms =
  let module Obs = Tin_obs.Obs in
  Obs.reset ();
  Obs.enable ();
  List.iter
    (fun pattern ->
      let limit = pattern_limit scale pattern in
      ignore (Catalog.gb ~limit ~time_budget_ms:budget_ms d.Workload.net pattern);
      ignore (Catalog.pb ~limit d.Workload.net tables pattern))
    (patterns_for d);
  Obs.disable ();
  let counters = List.filter (fun (_, v) -> v > 0) (Obs.counters ()) in
  Obs.reset ();
  counters

(* The sweep uses a tighter budget than the headline tables: each
   (pattern, jobs) cell repeats the whole search, and the point is the
   throughput ratio, not completion. *)
let sweep_dataset scale d =
  let with_chains = d.Workload.pattern_table_id = 11 in
  let budget_ms = scale.Workload.gb_budget_ms /. 2.0 in
  let jobs_list = job_counts () in
  let tables = ref None in
  let precompute_ms =
    List.map
      (fun jobs ->
        let t, ms =
          Timer.time_ms (fun () -> Catalog.precompute ~jobs ~with_chains d.Workload.net)
        in
        tables := Some t;
        (jobs, ms))
      jobs_list
  in
  let tables = Option.get !tables in
  let sweeps =
    List.map
      (fun pattern ->
        let limit = pattern_limit scale pattern in
        let points =
          List.map
            (fun jobs ->
              let gb, gb_ms =
                Timer.time_ms (fun () ->
                    Catalog.gb ~jobs ~limit ~time_budget_ms:budget_ms d.Workload.net pattern)
              in
              let pb, pb_ms =
                Timer.time_ms (fun () -> Catalog.pb ~jobs ~limit d.Workload.net tables pattern)
              in
              {
                jobs;
                gb_ms;
                gb_instances = gb.Catalog.instances;
                gb_truncated = gb.Catalog.truncated;
                pb_ms;
                pb_instances = pb.Catalog.instances;
              })
            jobs_list
        in
        { pattern = Catalog.pattern_name pattern; points })
      (patterns_for d)
  in
  {
    ds_name = d.Workload.spec.Tin_datasets.Spec.name;
    precompute_ms;
    l2_rows = Tables.n_rows tables.Catalog.l2;
    l3_rows = Tables.n_rows tables.Catalog.l3;
    chain_rows = Option.map Tables.n_rows tables.Catalog.c2;
    sweeps;
    obs = obs_snapshot scale d tables budget_ms;
  }

let per_s instances ms = if ms > 0.0 then float_of_int instances /. (ms /. 1000.0) else 0.0

let speedup_vs_1 points point value_of =
  match List.find_opt (fun p -> p.jobs = 1) points with
  | Some base when value_of base > 0.0 -> value_of point /. value_of base
  | _ -> 1.0

(* --- JSON (hand-rolled, like BENCH_flow.json) --- *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float f = if Float.is_finite f then Printf.sprintf "%.6g" f else "null"

let write_json path ~scale_name results =
  let b = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\n";
  add "  \"benchmark\": \"pattern_search\",\n";
  add "  \"scale\": \"%s\",\n" (json_escape scale_name);
  add "  \"domains_available\": %d,\n" (Batch.recommended_jobs ());
  add "  \"datasets\": [\n";
  List.iteri
    (fun i r ->
      add "    {\n";
      add "      \"name\": \"%s\",\n" (json_escape r.ds_name);
      add "      \"table_rows\": { \"l2\": %d, \"l3\": %d%s },\n" r.l2_rows r.l3_rows
        (match r.chain_rows with Some c -> Printf.sprintf ", \"chains\": %d" c | None -> "");
      add "      \"precompute\": [\n";
      let pre1 = try List.assoc 1 r.precompute_ms with Not_found -> 0.0 in
      List.iteri
        (fun j (jobs, ms) ->
          add "        { \"jobs\": %d, \"wall_ms\": %s, \"speedup_vs_1\": %s }%s\n" jobs
            (json_float ms)
            (json_float (if ms > 0.0 && pre1 > 0.0 then pre1 /. ms else 1.0))
            (if j < List.length r.precompute_ms - 1 then "," else ""))
        r.precompute_ms;
      add "      ],\n";
      add "      \"patterns\": [\n";
      List.iteri
        (fun j s ->
          add "        { \"name\": \"%s\", \"runs\": [\n" (json_escape s.pattern);
          List.iteri
            (fun k p ->
              let gb_per_s = per_s p.gb_instances p.gb_ms in
              let pb_per_s = per_s p.pb_instances p.pb_ms in
              add
                "          { \"jobs\": %d, \"gb_ms\": %s, \"gb_instances\": %d, \
                 \"gb_truncated\": %b, \"gb_per_s\": %s, \"gb_speedup_vs_1\": %s, \"pb_ms\": \
                 %s, \"pb_instances\": %d, \"pb_per_s\": %s, \"pb_speedup_vs_1\": %s }%s\n"
                p.jobs (json_float p.gb_ms) p.gb_instances p.gb_truncated (json_float gb_per_s)
                (json_float (speedup_vs_1 s.points p (fun q -> per_s q.gb_instances q.gb_ms)))
                (json_float p.pb_ms) p.pb_instances (json_float pb_per_s)
                (json_float (speedup_vs_1 s.points p (fun q -> per_s q.pb_instances q.pb_ms)))
                (if k < List.length s.points - 1 then "," else ""))
            s.points;
          add "        ] }%s\n" (if j < List.length r.sweeps - 1 then "," else ""))
        r.sweeps;
      add "      ],\n";
      add "      \"obs\": { %s }\n"
        (String.concat ", "
           (List.map (fun (n, v) -> Printf.sprintf "\"%s\": %d" (json_escape n) v) r.obs));
      add "    }%s\n" (if i < List.length results - 1 then "," else ""))
    results;
  add "  ]\n";
  add "}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  close_out oc

let sweep_table r =
  Table.print
    ~title:(Printf.sprintf "Parallel pattern search on %s (speedup vs jobs=1)" r.ds_name)
    ~header:[ "Pattern"; "jobs"; "GB"; "GB inst/s"; "GB speedup"; "PB"; "PB speedup" ]
    (List.concat_map
       (fun s ->
         List.map
           (fun p ->
             [
               s.pattern;
               string_of_int p.jobs;
               Table.fmt_ms p.gb_ms;
               Printf.sprintf "%.0f" (per_s p.gb_instances p.gb_ms);
               Printf.sprintf "%.2fx" (speedup_vs_1 s.points p (fun q -> per_s q.gb_instances q.gb_ms));
               Table.fmt_ms p.pb_ms;
               Printf.sprintf "%.2fx" (speedup_vs_1 s.points p (fun q -> per_s q.pb_instances q.pb_ms));
             ])
           s.points)
       r.sweeps)

let run_sweep ?(json = "BENCH_pattern.json") ~scale_name scale datasets =
  Printf.printf "Sweeping pattern search over job counts (%s) on %d domains...\n%!"
    (String.concat "/" (List.map string_of_int (job_counts ())))
    (Batch.recommended_jobs ());
  let results =
    List.map
      (fun d ->
        Printf.printf "  %s%!" d.Workload.spec.Tin_datasets.Spec.name;
        let r = sweep_dataset scale d in
        Printf.printf " ... done\n%!";
        r)
      datasets
  in
  print_newline ();
  List.iter
    (fun r ->
      sweep_table r;
      print_newline ())
    results;
  write_json json ~scale_name results;
  Printf.printf "Pattern benchmark written to %s\n" json
