(* Observability overhead guard.

   Every instrumentation site in the solvers and the pipeline reduces
   to a single [Atomic.get Obs.enabled] load when observability is off,
   so the disabled path must be free.  This benchmark keeps that claim
   honest in two ways:

   - it measures the disabled [Counter.incr] cost directly (ns/op) and
     multiplies by the number of counter operations a real solve
     workload performs (counted in a separate instrumented pass) to
     bound the injected overhead analytically;
   - it also times the workload with observability on vs off as a
     sanity cross-check (reported, not asserted: wall-clock deltas at
     this scale are noise-dominated).

   The analytic bound is deterministic, so it is asserted: the run
   fails if the estimated disabled-path overhead reaches 2%. *)

module Obs = Tin_obs.Obs
module Timer = Tin_util.Timer
module Extract = Tin_datasets.Extract
module Lp_flow = Tin_core.Lp_flow

let guard_pct = 2.0
let max_problems = 50

let solvers : Tin_lp.Problem.solver list = [ `Dense; `Bounded; `Sparse ]

(* ns per disabled Counter.incr, measured over a long tight loop. *)
let disabled_incr_ns () =
  let c = Obs.Counter.make "bench.obs.disabled_probe" in
  for _ = 1 to 1_000 do
    Obs.Counter.incr c
  done;
  let n = 20_000_000 in
  let (), secs =
    Timer.time_f (fun () ->
        for _ = 1 to n do
          Obs.Counter.incr c
        done)
  in
  secs *. 1e9 /. float_of_int n

let solve_all problems =
  List.iter
    (fun (p : Extract.problem) ->
      List.iter
        (fun solver ->
          ignore
            (Lp_flow.solve ~solver p.Extract.graph ~source:p.Extract.source ~sink:p.Extract.sink))
        solvers)
    problems

let run datasets =
  let problems =
    List.concat_map (fun d -> d.Workload.problems) datasets
    |> List.filteri (fun i _ -> i < max_problems)
  in
  if problems = [] then print_endline "obs: no extracted subgraphs to benchmark"
  else begin
    Printf.printf "Observability disabled-path overhead guard (%d subgraphs x %d solvers)\n%!"
      (List.length problems) (List.length solvers);
    let ns_per_op = disabled_incr_ns () in
    (* Count the counter operations the workload performs. *)
    Obs.reset ();
    Obs.enable ();
    let (), enabled_secs = Timer.time_f (fun () -> solve_all problems) in
    Obs.disable ();
    let ops = List.fold_left (fun acc (_, v) -> acc + v) 0 (Obs.counters ()) in
    Obs.reset ();
    (* Time the same workload on the disabled path (twice: warm + timed). *)
    solve_all problems;
    let (), disabled_secs = Timer.time_f (fun () -> solve_all problems) in
    let injected_secs = float_of_int ops *. ns_per_op /. 1e9 in
    let overhead_pct = 100.0 *. injected_secs /. Float.max disabled_secs 1e-9 in
    Printf.printf "  disabled Counter.incr:  %.2f ns/op\n" ns_per_op;
    Printf.printf "  counter ops in workload: %d\n" ops;
    Printf.printf "  workload wall: %.3fs disabled, %.3fs enabled\n" disabled_secs enabled_secs;
    Printf.printf "  estimated disabled-path overhead: %.4f%% (guard: < %g%%)\n" overhead_pct
      guard_pct;
    if overhead_pct >= guard_pct then
      failwith
        (Printf.sprintf "observability disabled-path overhead %.3f%% exceeds %g%% budget"
           overhead_pct guard_pct);
    Printf.printf "  ok: disabled-path overhead within budget\n"
  end
