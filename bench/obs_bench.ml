(* Observability overhead guard.

   Every instrumentation site in the solvers and the pipeline reduces
   to a single [Atomic.get Obs.enabled] load when observability is off,
   so the disabled path must be free.  This benchmark keeps that claim
   honest in two ways:

   - it measures the disabled [Counter.incr] cost directly (ns/op) and
     multiplies by the number of counter operations a real solve
     workload performs (counted in a separate instrumented pass) to
     bound the injected overhead analytically;
   - it also times the workload with observability on vs off as a
     sanity cross-check (reported, not asserted: wall-clock deltas at
     this scale are noise-dominated).

   The analytic bound is deterministic, so it is asserted: the run
   fails if the estimated disabled-path overhead reaches 2%.

   Since the flight recorder (armed by default) records spans even
   with tracing off, the bound now has a second term: span count times
   the measured cost of one flight-ring record.  The baseline workload
   is timed with the recorder disarmed — the strict zero-recording
   path the original guard protected.

   A third section assert-checks the trace analyzer on a real traced
   [Batch] run: stitching (single root, no orphans), chunk statistics,
   and per-domain utilization on multi-domain machines. *)

module Obs = Tin_obs.Obs
module Report = Tin_obs.Report
module Timer = Tin_util.Timer
module Json = Tin_util.Json
module Extract = Tin_datasets.Extract
module Lp_flow = Tin_core.Lp_flow
module Batch = Tin_core.Batch

let guard_pct = 2.0
let max_problems = 50

let solvers : Tin_lp.Problem.solver list = [ `Dense; `Bounded; `Sparse ]

(* ns per disabled Counter.incr, measured over a long tight loop. *)
let disabled_incr_ns () =
  let c = Obs.Counter.make "bench.obs.disabled_probe" in
  for _ = 1 to 1_000 do
    Obs.Counter.incr c
  done;
  let n = 20_000_000 in
  let (), secs =
    Timer.time_f (fun () ->
        for _ = 1 to n do
          Obs.Counter.incr c
        done)
  in
  secs *. 1e9 /. float_of_int n

(* ns per span recorded into the flight ring alone (enabled off,
   recorder armed) — the cost the always-on black box adds to each
   instrumented region when nobody is tracing. *)
let flight_span_ns () =
  Obs.Flight.arm ();
  let f () = () in
  for _ = 1 to 1_000 do
    Obs.Span.with_ "bench.obs.flight_probe" f
  done;
  let n = 2_000_000 in
  let (), secs =
    Timer.time_f (fun () ->
        for _ = 1 to n do
          Obs.Span.with_ "bench.obs.flight_probe" f
        done)
  in
  Obs.reset ();
  secs *. 1e9 /. float_of_int n

let solve_all problems =
  List.iter
    (fun (p : Extract.problem) ->
      List.iter
        (fun solver ->
          ignore
            (Lp_flow.solve ~solver p.Extract.graph ~source:p.Extract.source ~sink:p.Extract.sink))
        solvers)
    problems

(* Trace a real multi-domain Batch run and assert the analyzer on it:
   one root, no orphans, a non-empty critical path, and chunk stats.
   This is the bench-side contract for [tinflow obs report]. *)
let check_report problems =
  (* Always 2 domains: chunk spans and cross-domain stitching are what
     is under test, and both only exist on the spawning path.  On a
     single-CPU machine the domains timeshare — fine for correctness,
     which is why the utilization floor below stays gated on real
     parallelism. *)
  let jobs = 2 in
  Obs.reset ();
  Obs.enable ();
  Obs.Span.with_root "bench.obs.batch" (fun () ->
      ignore
        (Batch.max_flows ~jobs
           (List.map
              (fun (p : Extract.problem) ->
                { Batch.graph = p.Extract.graph;
                  source = p.Extract.source;
                  sink = p.Extract.sink;
                })
              problems)));
  let doc = Json.parse_exn (Obs.chrome_trace_json ()) in
  Obs.disable ();
  Obs.reset ();
  match Report.analyze doc with
  | Error msg -> failwith ("obs report analysis failed: " ^ msg)
  | Ok r ->
      Printf.printf
        "  trace analysis: %d spans, roots=%d orphans=%d, critical path %.3f ms (%d spans)\n"
        r.Report.spans r.Report.roots r.Report.orphans
        (r.Report.critical_path_us /. 1_000.0)
        (List.length r.Report.critical_path);
      if r.Report.roots <> 1 then
        failwith (Printf.sprintf "traced batch run has %d roots, expected 1" r.Report.roots);
      if r.Report.orphans <> 0 then
        failwith
          (Printf.sprintf "traced batch run has %d orphan spans (broken stitching)"
             r.Report.orphans);
      if r.Report.critical_path = [] then failwith "empty critical path on traced batch run";
      (match r.Report.chunks with
      | None -> failwith "no batch chunk spans found in traced batch run"
      | Some c ->
          Printf.printf "  chunks: %d, imbalance %.2f across %d domain(s)\n" c.Report.c_count
            c.Report.c_imbalance
            (List.length c.Report.c_per_domain_us));
      if jobs > 1 && Domain.recommended_domain_count () > 1 then begin
        let mean_util =
          match r.Report.domains with
          | [] -> 0.0
          | ds ->
              List.fold_left (fun acc d -> acc +. d.Report.d_utilization) 0.0 ds
              /. float_of_int (List.length ds)
        in
        Printf.printf "  mean domain utilization: %.1f%%\n" (100.0 *. mean_util);
        if mean_util < 0.2 then
          failwith
            (Printf.sprintf "mean domain utilization %.2f below 0.20 floor" mean_util)
      end;
      (* The JSON report must parse and carry its schema marker — what
         CI diffs with bench-check. *)
      let rj = Json.parse_exn (Report.to_json r) in
      (match Json.member "schema" rj with
      | Some (Json.Str "tinflow.obs.report/v1") -> ()
      | _ -> failwith "obs report JSON missing schema tinflow.obs.report/v1");
      Printf.printf "  ok: trace analysis and report schema verified\n"

let run datasets =
  let problems =
    List.concat_map (fun d -> d.Workload.problems) datasets
    |> List.filteri (fun i _ -> i < max_problems)
  in
  if problems = [] then print_endline "obs: no extracted subgraphs to benchmark"
  else begin
    Printf.printf "Observability disabled-path overhead guard (%d subgraphs x %d solvers)\n%!"
      (List.length problems) (List.length solvers);
    let ns_per_op = disabled_incr_ns () in
    let ns_per_flight_span = flight_span_ns () in
    (* Count the counter operations and spans the workload performs. *)
    Obs.reset ();
    Obs.enable ();
    let (), enabled_secs = Timer.time_f (fun () -> solve_all problems) in
    Obs.disable ();
    let ops = List.fold_left (fun acc (_, v) -> acc + v) 0 (Obs.counters ()) in
    let spans = List.length (Obs.trace_events ()) + Obs.dropped_events () in
    Obs.reset ();
    (* Time the same workload on the strict zero path (recorder
       disarmed, twice: warm + timed); the flight cost is then added
       back analytically from the measured per-span price. *)
    Obs.Flight.disarm ();
    solve_all problems;
    let (), disabled_secs = Timer.time_f (fun () -> solve_all problems) in
    Obs.Flight.arm ();
    let injected_secs =
      (float_of_int ops *. ns_per_op /. 1e9)
      +. (float_of_int spans *. ns_per_flight_span /. 1e9)
    in
    let overhead_pct = 100.0 *. injected_secs /. Float.max disabled_secs 1e-9 in
    Printf.printf "  disabled Counter.incr:  %.2f ns/op\n" ns_per_op;
    Printf.printf "  flight span record:     %.2f ns/span\n" ns_per_flight_span;
    Printf.printf "  counter ops in workload: %d, spans: %d\n" ops spans;
    Printf.printf "  workload wall: %.3fs disabled, %.3fs enabled\n" disabled_secs enabled_secs;
    Printf.printf "  estimated disabled-path overhead: %.4f%% (guard: < %g%%)\n" overhead_pct
      guard_pct;
    if overhead_pct >= guard_pct then
      failwith
        (Printf.sprintf "observability disabled-path overhead %.3f%% exceeds %g%% budget"
           overhead_pct guard_pct);
    Printf.printf "  ok: disabled-path overhead within budget\n";
    check_report problems
  end
