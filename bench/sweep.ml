(* Scalability sweep (beyond the paper's fixed-size evaluation): how
   generation, subgraph extraction and path-table precomputation scale
   with network size.  The paper argues its passes are linear in the
   number of interactions; this measures that claim directly on
   Bitcoin-shaped networks of growing scale. *)

module Spec = Tin_datasets.Spec
module Generator = Tin_datasets.Generator
module Extract = Tin_datasets.Extract
module Tables = Tin_patterns.Tables
module Table = Tin_util.Table
module Timer = Tin_util.Timer

let factors = [ 0.02; 0.05; 0.1; 0.2; 0.4 ]

let run () =
  let rows =
    List.map
      (fun factor ->
        let spec = Spec.scaled ~factor Spec.bitcoin in
        let net, gen_ms = Timer.time_ms (fun () -> Generator.generate ~seed:101 spec) in
        let stats = Generator.stats net in
        let problems, extract_ms =
          Timer.time_ms (fun () -> Extract.extract ~max_interactions:1000 ~max_subgraphs:200 net)
        in
        let tables, pre_ms =
          Timer.time_ms (fun () -> (Tables.cycles2 net, Tables.cycles3 net))
        in
        let greedy_ms =
          (* Average greedy scan over the first 50 extracted problems:
             the paper's linear-time claim for Section 4.1. *)
          match List.filteri (fun i _ -> i < 50) problems with
          | [] -> 0.0
          | sample ->
              Tin_util.Stats.mean
                (List.map
                   (fun (p : Extract.problem) ->
                     snd
                       (Timer.time_ms (fun () ->
                            Tin_core.Greedy.flow p.Extract.graph ~source:p.Extract.source
                              ~sink:p.Extract.sink)))
                   sample)
        in
        [
          Printf.sprintf "%.2f" factor;
          Table.fmt_count (float_of_int stats.Generator.n_interactions);
          Table.fmt_ms gen_ms;
          Table.fmt_ms extract_ms;
          Table.fmt_ms pre_ms;
          Table.fmt_count (float_of_int (Tables.n_rows (fst tables) + Tables.n_rows (snd tables)));
          Table.fmt_ms greedy_ms;
        ])
      factors
  in
  Table.print
    ~title:"Scalability sweep (Bitcoin-shaped networks of growing scale)"
    ~header:
      [ "scale"; "#interactions"; "generate"; "extract"; "precompute L2+L3"; "cycle rows"; "greedy/subgraph" ]
    rows;
  print_newline ()
