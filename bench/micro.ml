(* Bechamel micro-benchmarks of the four flow-computation kernels on a
   fixed mid-size subgraph, plus the pattern table builders on a small
   network.  These measure the building blocks behind Tables 6-8; the
   table harness itself measures end-to-end wall time per subgraph. *)

open Bechamel
open Toolkit
module Pipeline = Tin_core.Pipeline
module Extract = Tin_datasets.Extract

let pick_problem datasets =
  (* The largest Class-C problem across datasets, or any largest. *)
  let all = List.concat_map (fun d -> d.Workload.problems) datasets in
  let interesting =
    List.filter
      (fun (p : Extract.problem) ->
        Pipeline.classify p.Extract.graph ~source:p.Extract.source ~sink:p.Extract.sink
        = Pipeline.C)
      all
  in
  let pool = if interesting = [] then all else interesting in
  List.fold_left
    (fun best (p : Extract.problem) ->
      match best with
      | None -> Some p
      | Some b -> if p.Extract.n_interactions > b.Extract.n_interactions then Some p else Some b)
    None pool

let tests_for (p : Extract.problem) =
  let g = p.Extract.graph and source = p.Extract.source and sink = p.Extract.sink in
  let method_test m =
    Test.make
      ~name:(Pipeline.method_name m)
      (Staged.stage (fun () -> ignore (Pipeline.compute m g ~source ~sink)))
  in
  let preprocess =
    Test.make ~name:"preprocess-pass"
      (Staged.stage (fun () -> ignore (Tin_core.Preprocess.run g ~source ~sink)))
  in
  let simplify =
    let pre = (Tin_core.Preprocess.run g ~source ~sink).Tin_core.Preprocess.graph in
    Test.make ~name:"simplify-pass"
      (Staged.stage (fun () -> ignore (Tin_core.Simplify.run pre ~source ~sink)))
  in
  let soluble =
    Test.make ~name:"solubility-check"
      (Staged.stage (fun () -> ignore (Tin_core.Solubility.soluble g ~source ~sink)))
  in
  Test.make_grouped ~name:"kernels" ~fmt:"%s %s"
    (List.map method_test Pipeline.[ Greedy; Lp; Pre; Pre_sim; Time_expanded ]
    @ [ preprocess; simplify; soluble ])

let run datasets =
  match pick_problem datasets with
  | None -> print_endline "micro: no extracted subgraphs to benchmark"
  | Some p ->
      Printf.printf
        "Micro-benchmarks (bechamel) on the largest Class-C subgraph: seed %d, %d interactions\n"
        p.Extract.seed p.Extract.n_interactions;
      let test = tests_for p in
      let cfg =
        Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:false ~kde:(Some 10) ()
      in
      let instances = Instance.[ monotonic_clock ] in
      let raw = Benchmark.all cfg instances test in
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
      in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      let names = Hashtbl.fold (fun k _ acc -> k :: acc) results [] |> List.sort compare in
      List.iter
        (fun name ->
          let ols_result = Hashtbl.find results name in
          match Analyze.OLS.estimates ols_result with
          | Some (ns :: _) ->
              Printf.printf "  %-28s %s\n" name (Tin_util.Table.fmt_ms (ns /. 1e6))
          | _ -> Printf.printf "  %-28s (no estimate)\n" name)
        names
