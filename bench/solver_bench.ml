(* Solver benchmark: dense two-phase simplex vs bounded tableau vs
   sparse revised simplex on the extracted flow LPs (per difficulty
   class), plus multicore batch throughput across Domains.  Results are
   printed as tables and written machine-readable to a JSON file
   (default BENCH_flow.json) for regression tracking. *)

module Pipeline = Tin_core.Pipeline
module Lp_flow = Tin_core.Lp_flow
module Batch = Tin_core.Batch
module Extract = Tin_datasets.Extract
module Table = Tin_util.Table
module Timer = Tin_util.Timer
module Stats = Tin_util.Stats
module Fcmp = Tin_util.Fcmp

let solvers : (string * Tin_lp.Problem.solver) list =
  [ ("dense", `Dense); ("bounded", `Bounded); ("sparse", `Sparse) ]

type measured = {
  cls : Pipeline.cls;
  times : (string * float) list; (* solver name -> ms *)
}

(* One problem, all solvers, with a value-agreement guard: the three
   simplex variants must produce the same flow — any gap is a solver
   bug, not noise. *)
let measure_problem (p : Extract.problem) =
  let g = p.Extract.graph and source = p.Extract.source and sink = p.Extract.sink in
  let cls = Pipeline.classify g ~source ~sink in
  let runs =
    List.map
      (fun (name, solver) ->
        let v, ms = Timer.time_ms (fun () -> Lp_flow.solve ~solver g ~source ~sink) in
        let v =
          match v with
          | Ok v -> v
          | Error _ -> failwith (Printf.sprintf "solver %s failed on seed %d" name p.Extract.seed)
        in
        (name, v, ms))
      solvers
  in
  let _, v0, _ = List.hd runs in
  List.iter
    (fun (name, v, _) ->
      if not (Fcmp.approx_eq ~eps:1e-6 v0 v) then
        failwith
          (Printf.sprintf "solver disagreement on seed %d: dense=%g %s=%g" p.Extract.seed v0 name
             v))
    runs;
  { cls; times = List.map (fun (name, _, ms) -> (name, ms)) runs }

let avg_times measured =
  List.map
    (fun (name, _) -> (name, Stats.mean (List.map (fun r -> List.assoc name r.times) measured)))
    solvers

type class_summary = { label : string; count : int; solver_ms : (string * float) list }

let class_summaries measured =
  let bucket label rows = { label; count = List.length rows; solver_ms = avg_times rows } in
  let cls c = List.filter (fun r -> r.cls = c) measured in
  [
    bucket "All" measured;
    bucket "A" (cls Pipeline.A);
    bucket "B" (cls Pipeline.B);
    bucket "C" (cls Pipeline.C);
  ]

(* ------------------------------------------------------------------ *)
(* Batch throughput                                                    *)
(* ------------------------------------------------------------------ *)

type batch_run = {
  jobs : int;
  timing : (float * float, string) result;
      (* [Ok (wall_ms, problems_per_s)], or [Error reason] when the
         measurement would be meaningless on this machine. *)
}

let job_counts () =
  (* Always include a multi-domain point (jobs = 2) so the parallel
     path is exercised even on single-core machines; above that, only
     job counts the hardware can actually run concurrently. *)
  let rec_jobs = Batch.recommended_jobs () in
  List.sort_uniq compare (1 :: 2 :: rec_jobs :: List.filter (fun j -> j <= rec_jobs) [ 4; 8 ])

let measure_batch problems =
  let batch_problems =
    List.map
      (fun (p : Extract.problem) ->
        { Batch.graph = p.Extract.graph; source = p.Extract.source; sink = p.Extract.sink })
      problems
  in
  let n = List.length batch_problems in
  let single_domain = Batch.recommended_jobs () = 1 in
  let baseline = ref [] in
  List.map
    (fun jobs ->
      let values, wall_ms =
        Timer.time_ms (fun () -> Batch.max_flows ~jobs ~method_:Pipeline.Lp batch_problems)
      in
      if !baseline = [] then baseline := values
      else
        List.iter2
          (fun a b ->
            if not (Fcmp.approx_eq ~eps:1e-6 a b) then
              failwith (Printf.sprintf "batch value drift at jobs=%d: %g vs %g" jobs a b))
          !baseline values;
      (* On a single-domain machine jobs > 1 only time-slices one core,
         so a "parallel" wall time is pure scheduling noise — worse, it
         poisons the committed baseline with jobs=2 slower than jobs=1.
         The run above still exercises the multi-domain code path and
         the value-drift guard; only the numbers are refused. *)
      let timing =
        if jobs > 1 && single_domain then Error "single_domain"
        else
          Ok
            ( wall_ms,
              if wall_ms > 0.0 then float_of_int n /. (wall_ms /. 1000.0) else 0.0 )
      in
      { jobs; timing })
    (job_counts ())

(* ------------------------------------------------------------------ *)
(* Observability snapshot                                              *)
(* ------------------------------------------------------------------ *)

module Obs = Tin_obs.Obs

(* The timed runs above execute with observability disabled so the
   measurements stay clean; this re-runs each (problem, solver) pair
   once with counters on and reports the totals (LP iterations,
   pivots, bound flips, refactorizations, ...) so BENCH_flow.json
   tracks algorithmic work alongside wall time. *)
let obs_snapshot problems =
  Obs.reset ();
  Obs.enable ();
  List.iter
    (fun (p : Extract.problem) ->
      List.iter
        (fun (_, solver) ->
          ignore
            (Lp_flow.solve ~solver p.Extract.graph ~source:p.Extract.source ~sink:p.Extract.sink))
        solvers)
    problems;
  Obs.disable ();
  let counters = List.filter (fun (_, v) -> v > 0) (Obs.counters ()) in
  Obs.reset ();
  counters

(* ------------------------------------------------------------------ *)
(* JSON output (hand-rolled: only strings, ints and floats appear)     *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float f = if Float.is_finite f then Printf.sprintf "%.6g" f else "null"

type dataset_result = {
  name : string;
  n_problems : int;
  classes : class_summary list;
  batch : batch_run list;
  obs : (string * int) list;
}

let write_json path ~scale_name results =
  let b = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\n";
  add "  \"benchmark\": \"flow_solvers\",\n";
  add "  \"scale\": \"%s\",\n" (json_escape scale_name);
  add "  \"domains_available\": %d,\n" (Batch.recommended_jobs ());
  add "  \"datasets\": [\n";
  List.iteri
    (fun i r ->
      add "    {\n";
      add "      \"name\": \"%s\",\n" (json_escape r.name);
      add "      \"n_problems\": %d,\n" r.n_problems;
      add "      \"classes\": [\n";
      List.iteri
        (fun j c ->
          add "        { \"class\": \"%s\", \"count\": %d, \"solver_avg_ms\": { %s } }%s\n"
            (json_escape c.label) c.count
            (String.concat ", "
               (List.map
                  (fun (name, ms) -> Printf.sprintf "\"%s\": %s" name (json_float ms))
                  c.solver_ms))
            (if j < List.length r.classes - 1 then "," else ""))
        r.classes;
      add "      ],\n";
      add "      \"batch_lp\": [\n";
      List.iteri
        (fun j br ->
          (match br.timing with
          | Ok (wall_ms, problems_per_s) ->
              add "        { \"jobs\": %d, \"wall_ms\": %s, \"problems_per_s\": %s }%s\n" br.jobs
                (json_float wall_ms) (json_float problems_per_s)
                (if j < List.length r.batch - 1 then "," else "")
          | Error reason ->
              add "        { \"jobs\": %d, \"skipped\": \"%s\" }%s\n" br.jobs
                (json_escape reason)
                (if j < List.length r.batch - 1 then "," else "")))
        r.batch;
      add "      ],\n";
      add "      \"obs\": { %s }\n"
        (String.concat ", "
           (List.map (fun (n, v) -> Printf.sprintf "\"%s\": %d" (json_escape n) v) r.obs));
      add "    }%s\n" (if i < List.length results - 1 then "," else ""))
    results;
  add "  ]\n";
  add "}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  close_out oc

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let solver_table name classes =
  Table.print
    ~title:(Printf.sprintf "LP solver runtime for %s subgraphs (avg per subgraph)" name)
    ~header:("Subgraphs" :: List.map (fun (n, _) -> n) solvers)
    (List.map
       (fun c ->
         if c.count = 0 then [ c.label ^ " (0)"; "-"; "-"; "-" ]
         else
           Printf.sprintf "%s (%d)" c.label c.count
           :: List.map (fun (_, ms) -> Table.fmt_ms ms) c.solver_ms)
       classes)

let batch_table name runs =
  Table.print
    ~title:(Printf.sprintf "Batch LP throughput for %s (all subgraphs per run)" name)
    ~header:[ "jobs"; "wall"; "problems/s" ]
    (List.map
       (fun r ->
         match r.timing with
         | Ok (wall_ms, problems_per_s) ->
             [ string_of_int r.jobs; Table.fmt_ms wall_ms; Printf.sprintf "%.1f" problems_per_s ]
         | Error _ -> [ string_of_int r.jobs; "skipped"; "(single domain)" ])
       runs)

let run ?(json = "BENCH_flow.json") ~scale_name datasets =
  Printf.printf "Comparing LP solvers (%s) and batch scaling on %d domains...\n%!"
    (String.concat "/" (List.map fst solvers))
    (Batch.recommended_jobs ());
  let results =
    List.map
      (fun d ->
        let name = d.Workload.spec.Tin_datasets.Spec.name in
        Printf.printf "  %s: %d subgraphs%!" name (List.length d.Workload.problems);
        let measured = List.map measure_problem d.Workload.problems in
        Printf.printf " ... solvers done%!";
        let batch = measure_batch d.Workload.problems in
        Printf.printf ", batch done\n%!";
        let obs = obs_snapshot d.Workload.problems in
        {
          name;
          n_problems = List.length d.Workload.problems;
          classes = class_summaries measured;
          batch;
          obs;
        })
      datasets
  in
  print_newline ();
  List.iter
    (fun r ->
      solver_table r.name r.classes;
      batch_table r.name r.batch;
      print_newline ())
    results;
  write_json json ~scale_name results;
  Printf.printf "Solver benchmark written to %s\n" json
