(* Loan-ring detection on a peer-to-peer lending network — the
   paper's Prosper Loans use case, exercising the full pattern
   toolkit (Section 5) through the public API.

   A "loan ring" is a set of users whose money travels in a short
   circle: a lends to b, b lends back (P2), possibly via a middleman
   (P3), or with side agreements (P4/P6, which need the LP because
   greedy forwarding is not optimal).  The example compares graph
   browsing against the precomputation-based search on all rigid
   patterns, then uses the relaxed patterns to rank users.

   Run with:  dune exec examples/loan_rings.exe *)

module Spec = Tin_datasets.Spec
module Generator = Tin_datasets.Generator
module Catalog = Tin_patterns.Catalog
module Tables = Tin_patterns.Tables
module Table = Tin_util.Table
module Timer = Tin_util.Timer

let () =
  let spec = Spec.scaled ~factor:0.4 Spec.prosper in
  let net = Generator.generate ~seed:77 spec in
  let stats = Generator.stats net in
  Printf.printf "Lending network: %d users, %d lender-borrower edges, %d loans (avg $%.2f)\n\n"
    stats.Generator.n_vertices stats.Generator.n_edges stats.Generator.n_interactions
    stats.Generator.avg_qty;

  (* Precompute the path tables once (chains included: the network is
     small, as the paper notes for Prosper). *)
  let tables, pre_ms = Timer.time_ms (fun () -> Catalog.precompute ~with_chains:true net) in
  Printf.printf "Precomputed path tables in %s\n\n" (Table.fmt_ms pre_ms);

  let rows =
    List.map
      (fun pattern ->
        let gb, gb_ms = Timer.time_ms (fun () -> Catalog.gb ~limit:50_000 net pattern) in
        let pb, pb_ms = Timer.time_ms (fun () -> Catalog.pb ~limit:50_000 net tables pattern) in
        assert (gb.Catalog.instances = pb.Catalog.instances);
        [
          Catalog.pattern_name pattern;
          string_of_int gb.Catalog.instances;
          "$" ^ Table.fmt_flow (Catalog.avg_flow gb);
          Table.fmt_ms gb_ms;
          Table.fmt_ms pb_ms;
        ])
      Catalog.all
  in
  Table.print ~title:"Loan-ring patterns: graph browsing vs precomputed tables"
    ~header:[ "Pattern"; "Rings"; "Avg flow"; "GB time"; "PB time" ]
    rows;
  print_newline ();

  (* Rank users by relaxed round-trip flow (RP2 + RP3 aggregation). *)
  let per_user = Hashtbl.create 128 in
  let tally table =
    Array.iter
      (fun r ->
        let a = r.Tables.verts.(0) in
        let prev = Option.value ~default:0.0 (Hashtbl.find_opt per_user a) in
        Hashtbl.replace per_user a (prev +. r.Tables.flow))
      (Tables.rows table)
  in
  tally tables.Catalog.l2;
  tally tables.Catalog.l3;
  let ranked =
    Hashtbl.fold (fun a f acc -> (a, f) :: acc) per_user []
    |> List.sort (fun (_, f1) (_, f2) -> Float.compare f2 f1)
    |> List.filteri (fun i _ -> i < 5)
  in
  Table.print ~title:"Users with the largest round-trip loan flow"
    ~header:[ "User"; "Round-trip $" ]
    (List.map (fun (a, f) -> [ string_of_int (Static.label net a); Table.fmt_flow f ]) ranked)
