(* Network-traffic flow analysis on a botnet-shaped network — the
   paper's CTU-13 use case: how many bytes could have travelled from a
   suspected command-and-control host to an exfiltration endpoint,
   possibly through intermediate hops?

   This example builds a CTU-shaped traffic network, picks the two
   busiest hosts as source and sink, carves out the sub-network of
   hosts on short source-to-sink paths, and compares greedy and
   maximum byte flow between them.  It also demonstrates the synthetic
   source/sink construction (Figure 4) by measuring the flow from a
   *set* of bot hosts simultaneously.

   Run with:  dune exec examples/traffic_analysis.exe *)

module Spec = Tin_datasets.Spec
module Generator = Tin_datasets.Generator
module Pipeline = Tin_core.Pipeline
module Endpoints = Tin_core.Endpoints
module Table = Tin_util.Table

(* Union of all simple paths (<= 3 hops) from [src] to [dst]. *)
let path_subgraph net ~src ~dst =
  let edges = ref [] in
  Static.iter_succs net src (fun a e1 ->
      if a = dst then edges := [ e1 ] :: !edges
      else
        Static.iter_succs net a (fun b e2 ->
            if b = dst && a <> src then edges := [ e1; e2 ] :: !edges
            else if b <> src && b <> a then
              Static.iter_succs net b (fun c e3 ->
                  if c = dst then edges := [ e1; e2; e3 ] :: !edges)));
  List.concat !edges

let () =
  let spec = Spec.scaled ~factor:0.2 Spec.ctu13 in
  let net = Generator.generate ~seed:1313 spec in
  let stats = Generator.stats net in
  Printf.printf "Traffic network: %d hosts, %d connections, %d packets/flows\n\n"
    stats.Generator.n_vertices stats.Generator.n_edges stats.Generator.n_interactions;

  (* The two busiest hosts (highest total degree). *)
  let n = Static.n_vertices net in
  let by_degree =
    List.init n (fun v -> (v, Static.out_degree net v + Static.in_degree net v))
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  (* Skip the very hottest hubs: their 3-hop neighbourhood is most of
     the network.  Moderately busy hosts give a focused sub-network,
     like the paper's extracted subgraphs. *)
  match List.filteri (fun i _ -> i >= 4 && i < 6) by_degree with
  | [ (c2, _); (exfil, _) ] ->
      Printf.printf "Suspected C2 host: %d; suspected exfiltration endpoint: %d\n" c2 exfil;
      let eids = path_subgraph net ~src:c2 ~dst:exfil in
      if eids = [] then print_endline "No short path between them; nothing to analyse."
      else begin
        let g = Static.edges_to_graph net eids in
        let g = Topo.dagify g ~root:(Static.label net c2) in
        let source = Static.label net c2 and sink = Static.label net exfil in
        Printf.printf "Sub-network on <=3-hop paths: %d hosts, %d edges, %d transfers\n\n"
          (Graph.n_vertices g) (Graph.n_edges g) (Graph.n_interactions g);
        let greedy = Tin_core.Greedy.flow g ~source ~sink in
        (* The sub-network can be large; the time-expanded Dinic
           reduction (Section 4.2.1) scales where the LP baseline would
           not. *)
        let best = Pipeline.compute Pipeline.Time_expanded g ~source ~sink in
        Table.print ~title:"Byte flow from C2 to exfiltration endpoint"
          ~header:[ "Model"; "Bytes" ]
          [
            [ "Greedy transfer (Def. 4)"; Table.fmt_flow greedy ];
            [ "Maximum flow (Sec. 4.2)"; Table.fmt_flow best ];
          ];
        print_newline ()
      end;
      (* Multi-source variant: total flow out of the top-5 talkers into
         the exfiltration endpoint, via the synthetic super-source. *)
      let bots =
        List.filteri (fun i _ -> i >= 4 && i < 9) by_degree |> List.map fst
        |> List.filter (fun v -> v <> exfil)
      in
      let eids = List.concat_map (fun b -> path_subgraph net ~src:b ~dst:exfil) bots in
      if eids <> [] then begin
        let g = Static.edges_to_graph net eids in
        (* Wire every bot to one super-source, exactly like the
           synthetic-source construction of the paper's Figure 4: a
           single interaction at time -inf with infinite quantity. *)
        let bots_labels =
          List.map (Static.label net) bots |> List.filter (Graph.mem_vertex g)
        in
        let super = 1 + List.fold_left max 0 (Graph.vertices g) in
        let g =
          List.fold_left
            (fun g b ->
              Graph.add_edge g ~src:super ~dst:b
                [ Interaction.unchecked ~time:neg_infinity ~qty:infinity ])
            g bots_labels
        in
        let g = Topo.dagify g ~root:super in
        Printf.printf "Botnet-wide: flow from %d suspected bots into host %d: %s bytes\n"
          (List.length bots_labels) (Static.label net exfil)
          (Table.fmt_flow
             (Pipeline.compute Pipeline.Time_expanded g ~source:super
                ~sink:(Static.label net exfil)))
      end
  | _ -> print_endline "Network too small."
