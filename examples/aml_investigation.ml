(* Anti-money-laundering investigation on a synthetic transaction
   network — the motivating application of the paper's introduction.

   A financial intelligence unit wants accounts that send money out
   and receive most of it back through intermediaries (round-trip
   flows), a classic layering signature.  This example:

   1. generates a Bitcoin-shaped transaction network;
   2. enumerates relaxed round-trip patterns (RP2/RP3, Section 5.3)
      using the precomputed cycle tables;
   3. ranks seed accounts by round-trip flow;
   4. extracts the top seed's full subgraph (Figure 10 style) and
      computes its exact maximum flow with the PreSim pipeline.

   Run with:  dune exec examples/aml_investigation.exe *)

module Spec = Tin_datasets.Spec
module Generator = Tin_datasets.Generator
module Extract = Tin_datasets.Extract
module Tables = Tin_patterns.Tables
module Pipeline = Tin_core.Pipeline
module Table = Tin_util.Table

let () =
  let spec = Spec.scaled ~factor:0.2 Spec.bitcoin in
  let net = Generator.generate ~seed:2024 spec in
  let stats = Generator.stats net in
  Printf.printf "Transaction network: %d accounts, %d transfer edges, %d transactions\n\n"
    stats.Generator.n_vertices stats.Generator.n_edges stats.Generator.n_interactions;

  (* Round-trip flows per account, from the precomputed cycle tables:
     this is exactly the paper's "relaxed pattern" aggregation. *)
  let l2 = Tables.cycles2 net and l3 = Tables.cycles3 net in
  Printf.printf "Precomputed %d two-hop and %d three-hop cycles\n\n" (Tables.n_rows l2)
    (Tables.n_rows l3);
  let roundtrip = Hashtbl.create 256 in
  let add t =
    Array.iter
      (fun r ->
        let a = r.Tables.verts.(0) in
        let prev = Option.value ~default:0.0 (Hashtbl.find_opt roundtrip a) in
        Hashtbl.replace roundtrip a (prev +. r.Tables.flow))
      (Tables.rows t)
  in
  add l2;
  add l3;
  let ranked =
    Hashtbl.fold (fun a f acc -> (a, f) :: acc) roundtrip []
    |> List.sort (fun (_, f1) (_, f2) -> Float.compare f2 f1)
  in
  let top = List.filteri (fun i _ -> i < 10) ranked in
  Table.print ~title:"Top accounts by aggregated round-trip flow (<= 3 hops)"
    ~header:[ "Account"; "Round-trip flow (B)" ]
    (List.map
       (fun (a, f) -> [ string_of_int (Static.label net a); Table.fmt_flow f ])
       top);

  (* Deep-dive on the top suspect: exact maximum flow through the
     merged cycle subgraph, with the seed split into source/sink. *)
  (* Deep-dive on the highest-ranked suspect whose cycle subgraph is
     small enough for exact analysis (hubs can exceed the cap, exactly
     like the paper's discarded >10K-interaction subgraphs). *)
  let analysable =
    List.find_map
      (fun (suspect, aggregated) ->
        match Extract.subgraph_of_seed net ~seed:suspect ~max_interactions:2000 with
        | Some p -> Some (p, aggregated)
        | None -> None)
      ranked
  in
  match analysable with
  | None -> print_endline "No analysable suspect found."
  | Some (p, aggregated) ->
          let r = Pipeline.report p.Extract.graph ~source:p.Extract.source ~sink:p.Extract.sink in
          Printf.printf
            "\nSuspect account %d: %d vertices, %d edges, %d transactions in its cycle subgraph\n"
            p.Extract.seed
            (Graph.n_vertices p.Extract.graph)
            (Graph.n_edges p.Extract.graph)
            p.Extract.n_interactions;
          Printf.printf "  difficulty: %s (LP variables %d -> %d after reduction)\n"
            (Pipeline.cls_name r.Pipeline.cls) r.Pipeline.lp_vars_before r.Pipeline.lp_vars_after;
          Printf.printf "  exact maximum round-trip flow: %sB\n" (Table.fmt_flow r.Pipeline.value);
          Printf.printf "  (aggregate of independent cycles was %sB)\n" (Table.fmt_flow aggregated);
          Printf.printf
            "  greedy flow for comparison:    %sB\n"
            (Table.fmt_flow
               (Tin_core.Greedy.flow p.Extract.graph ~source:p.Extract.source ~sink:p.Extract.sink));
          (* Provenance: the actual transaction routes that carry the
             maximum flow (flow decomposition over the time-expanded
             network) — what an investigator would subpoena. *)
          let _, routes =
            Tin_core.Decompose.max_flow_paths p.Extract.graph ~source:p.Extract.source
              ~sink:p.Extract.sink
          in
          let top_routes =
            List.sort
              (fun a b -> Float.compare b.Tin_core.Decompose.amount a.Tin_core.Decompose.amount)
              routes
            |> List.filteri (fun i _ -> i < 3)
          in
          Printf.printf "  heaviest carrying routes (%d total):\n" (List.length routes);
          List.iter
            (fun r ->
              let hops =
                List.map
                  (fun leg ->
                    Printf.sprintf "%d->%d@t=%.0f" leg.Tin_core.Decompose.src
                      leg.Tin_core.Decompose.dst leg.Tin_core.Decompose.time)
                  r.Tin_core.Decompose.legs
              in
              Printf.printf "    %sB via %s\n"
                (Table.fmt_flow r.Tin_core.Decompose.amount)
                (String.concat " , " hops))
            top_routes
