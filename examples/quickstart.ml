(* Quickstart: the paper's running example, end to end.

   Builds the toy interaction network of Figure 3, computes the greedy
   flow (Section 4.1) and the maximum flow (Section 4.2) with every
   available method, and shows what the accelerators do.

   Run with:  dune exec examples/quickstart.exe *)

module Greedy = Tin_core.Greedy
module Pipeline = Tin_core.Pipeline
module Preprocess = Tin_core.Preprocess
module Simplify = Tin_core.Simplify
module Solubility = Tin_core.Solubility

let () =
  (* Vertices are plain integers; edges carry (time, quantity)
     interaction sequences. *)
  let s = 0 and y = 1 and z = 2 and t = 3 in
  let g =
    Graph.of_edges
      [
        (s, y, [ (1.0, 5.0) ]);
        (s, z, [ (2.0, 3.0) ]);
        (y, z, [ (3.0, 5.0) ]);
        (y, t, [ (4.0, 4.0) ]);
        (z, t, [ (5.0, 1.0) ]);
      ]
  in
  Format.printf "The interaction network (paper, Figure 3):@.%a@." Graph.pp g;

  (* Greedy flow: a single scan of the interactions in time order. *)
  let greedy, trace = Greedy.flow_trace g ~source:s ~sink:t in
  Format.printf "Greedy scan (Table 2 of the paper):@.";
  List.iter
    (fun tr ->
      Format.printf "  t=%-3g %d->%d offered %g, moved %g@." tr.Greedy.time tr.Greedy.src
        tr.Greedy.dst tr.Greedy.offered tr.Greedy.moved)
    trace;
  Format.printf "Greedy flow from %d to %d: %g@.@." s t greedy;

  (* Maximum flow: vertex y can hold quantity back for the later
     (y, t) interaction, which greedy cannot. *)
  Format.printf "Is greedy guaranteed optimal here (Lemma 2)? %b@."
    (Solubility.soluble g ~source:s ~sink:t);
  List.iter
    (fun m ->
      Format.printf "  %-8s -> %g@." (Pipeline.method_name m) (Pipeline.compute m g ~source:s ~sink:t))
    Pipeline.[ Lp; Pre; Pre_sim; Time_expanded ];
  Format.printf "Maximum flow is 5: y sends only 1 to z at t=3, keeping 4 for t.@.@.";

  (* What the accelerators do on a graph with removable junk. *)
  let g2 =
    Graph.of_edges
      [
        (s, y, [ (1.0, 2.0); (4.0, 3.0) ]);
        (y, z, [ (0.5, 9.0); (6.0, 4.0) ]);
        (* (0.5, 9) is dead: y receives nothing before t=0.5 *)
        (z, t, [ (7.0, 4.0) ]);
      ]
  in
  let pre = Preprocess.run g2 ~source:s ~sink:t in
  Format.printf "Preprocessing (Algorithm 1) removed %d dead interaction(s):@.%a@."
    pre.Preprocess.removed_interactions Graph.pp pre.Preprocess.graph;
  let sim = Simplify.run pre.Preprocess.graph ~source:s ~sink:t in
  Format.printf "Simplification (Algorithm 2) collapsed the source chain:@.%a@." Graph.pp
    sim.Simplify.graph;
  Format.printf "Flow is unchanged: %g = %g@.@."
    (Pipeline.max_flow g2 ~source:s ~sink:t)
    (Pipeline.max_flow sim.Simplify.graph ~source:s ~sink:t);

  (* Extensions: when did the flow happen, and which interactions
     carried it? *)
  Format.printf "Maximum flow by prefix of time (flow profile):@.";
  List.iter
    (fun (tau, v) -> Format.printf "  up to t=%g: %g@." tau v)
    (Tin_core.Window.max_flow_profile g ~source:s ~sink:t);
  let _, routes = Tin_core.Decompose.max_flow_paths g ~source:s ~sink:t in
  Format.printf "Carrying routes:@.";
  List.iter
    (fun r ->
      let hops =
        List.map
          (fun leg ->
            Printf.sprintf "%d->%d@t=%g" leg.Tin_core.Decompose.src leg.Tin_core.Decompose.dst
              leg.Tin_core.Decompose.time)
          r.Tin_core.Decompose.legs
      in
      Format.printf "  %g via %s@." r.Tin_core.Decompose.amount (String.concat ", " hops))
    routes
