(* Capacity planning with bounded vertex buffers — an extension the
   paper leaves open (it assumes "we do not set a bound on how much a
   node can buffer"; real routers and accounts do have limits).

   The time-expanded reduction of Section 4.2.1 supports buffer
   bounds for free: the holdover arcs that model buffering get the
   vertex's capacity instead of infinity.  This example sweeps the
   buffer size of the intermediate hosts of a traffic sub-network and
   shows the achievable source→sink throughput at each size — the
   "how much memory do relays need before the network itself is the
   bottleneck" question.

   It also demonstrates the online greedy monitor: interactions are
   replayed as a live stream and the running flow is inspected.

   Run with:  dune exec examples/router_capacity.exe *)

module Spec = Tin_datasets.Spec
module Generator = Tin_datasets.Generator
module Extract = Tin_datasets.Extract
module TE = Tin_maxflow.Time_expand
module Online = Tin_core.Online
module Table = Tin_util.Table

let () =
  let spec = Spec.scaled ~factor:0.3 Spec.ctu13 in
  let net = Generator.generate ~seed:4242 spec in
  (* Take the largest extracted relay sub-network. *)
  let problems = Extract.extract ~max_interactions:1500 net in
  match
    List.sort
      (fun (a : Extract.problem) b -> compare b.Extract.n_interactions a.Extract.n_interactions)
      problems
  with
  | [] -> print_endline "no relay sub-network found"
  | p :: _ ->
      Printf.printf "Relay sub-network around host %d: %d hosts, %d transfers\n\n" p.Extract.seed
        (Graph.n_vertices p.Extract.graph)
        p.Extract.n_interactions;
      let unbounded =
        TE.max_flow p.Extract.graph ~source:p.Extract.source ~sink:p.Extract.sink
      in
      let rows =
        List.map
          (fun cap ->
            let throughput =
              TE.max_flow
                ~buffer_capacity:(fun _ -> cap)
                p.Extract.graph ~source:p.Extract.source ~sink:p.Extract.sink
            in
            [
              Table.fmt_flow cap;
              Table.fmt_flow throughput;
              Printf.sprintf "%.0f%%" (100.0 *. throughput /. Float.max 1e-9 unbounded);
            ])
          [ 0.0; 100.0; 1_000.0; 10_000.0; 100_000.0; 1_000_000.0 ]
      in
      Table.print
        ~title:"Throughput vs per-host buffer capacity (bytes)"
        ~header:[ "Buffer capacity"; "Max throughput"; "% of unbounded" ]
        (rows @ [ [ "unbounded"; Table.fmt_flow unbounded; "100%" ] ]);
      print_newline ();
      (* Live monitoring: replay the history as a stream and report
         the running flow at quartiles. *)
      let interactions = Graph.interactions_sorted p.Extract.graph in
      let monitor = Online.create ~source:p.Extract.source ~sink:p.Extract.sink in
      let n = Array.length interactions in
      Printf.printf "Streaming replay (online greedy monitor):\n";
      Array.iteri
        (fun k (src, dst, i) ->
          ignore (Online.push monitor ~src ~dst i);
          if (k + 1) mod (max 1 (n / 4)) = 0 || k = n - 1 then
            Printf.printf "  after %4d/%d transfers: greedy flow so far = %s\n" (k + 1) n
              (Table.fmt_flow (Online.flow monitor)))
        interactions
